// POSIX page-fault machinery: mprotect + SIGSEGV access detection.
//
// Page-based DSMs (IVY, TreadMarks, JIAJIA) detect shared-memory
// accesses with virtual-memory traps: an invalid page is PROT_NONE (any
// touch faults -> fetch from home), a clean page is PROT_READ (first
// write faults -> make a twin, upgrade to read-write). The JIAJIA
// baseline in this repository uses exactly that mechanism; LOTS itself
// is pure-runtime (operator overloading, paper §3.3) and does not fault.
//
// Thread-safety: the handler is process-global, but every Region is
// touched by exactly one application thread (per-node page caches are
// disjoint address ranges), so fault handling needs no locking beyond
// the registry's read-mostly region list. Faults are synchronous (the
// faulting thread executes the handler at the faulting instruction), so
// calling into protocol code that sends messages and waits for the
// service thread's reply is safe — the classic TreadMarks construction.
//
// We deliberately avoid deducing read-vs-write from platform-specific
// fault flags: the tracked protection state is enough (NONE -> "invalid
// access" fault; READ -> necessarily a write fault), which keeps the
// module portable POSIX.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

namespace lots::vm {

enum class Prot : uint8_t {
  kNone = 0,  ///< invalid: any access faults
  kRead,      ///< clean: writes fault (twin creation point)
  kReadWrite, ///< dirty: no faults
};

/// One protected address range with per-page protection state.
class Region {
 public:
  /// The fault callback. `is_write` is true when the faulting page was
  /// readable (so the fault must be a store). Must resolve the fault
  /// (fetch/twin + set_protection upward) and return true; returning
  /// false forwards the fault as a genuine crash.
  using FaultFn = std::function<bool(Region&, size_t page_index, bool is_write)>;

  Region(size_t bytes, size_t page_bytes);
  ~Region();
  Region(const Region&) = delete;
  Region& operator=(const Region&) = delete;

  [[nodiscard]] uint8_t* base() const { return base_; }
  [[nodiscard]] size_t bytes() const { return bytes_; }
  [[nodiscard]] size_t page_bytes() const { return page_; }
  [[nodiscard]] size_t pages() const { return bytes_ / page_; }

  void set_fault_handler(FaultFn fn) { on_fault_ = std::move(fn); }

  /// Changes the protection of one page and records the new state.
  void set_protection(size_t page_index, Prot p);
  [[nodiscard]] Prot protection(size_t page_index) const { return state_[page_index]; }

  [[nodiscard]] bool contains(const void* addr) const {
    const auto* a = static_cast<const uint8_t*>(addr);
    return a >= base_ && a < base_ + bytes_;
  }
  [[nodiscard]] size_t page_index(const void* addr) const {
    return (static_cast<const uint8_t*>(addr) - base_) / page_;
  }

  [[nodiscard]] uint64_t fault_count() const { return faults_.load(std::memory_order_relaxed); }

 private:
  friend class FaultRegistry;
  bool handle_fault(void* addr);

  uint8_t* base_ = nullptr;
  size_t bytes_;
  size_t page_;
  std::vector<Prot> state_;
  FaultFn on_fault_;
  std::atomic<uint64_t> faults_{0};
};

/// Process-global SIGSEGV dispatcher. Regions register themselves on
/// construction; the first registration installs the signal handler.
class FaultRegistry {
 public:
  static FaultRegistry& instance();
  void add(Region* r);
  void remove(Region* r);
  /// Dispatch from the signal handler; returns false if no region owns
  /// the address (fault is then re-raised with the default action).
  bool dispatch(void* addr);

 private:
  FaultRegistry() = default;
  static constexpr size_t kMaxRegions = 4096;
  std::atomic<Region*> regions_[kMaxRegions] = {};
  std::atomic<bool> handler_installed_{false};
};

}  // namespace lots::vm
