#include "vmdetect/vmdetect.hpp"

#include <signal.h>
#include <sys/mman.h>

#include <cstring>
#include <vector>

#include "common/error.hpp"

namespace lots::vm {
namespace {

void sigsegv_trampoline(int sig, siginfo_t* info, void* /*uctx*/) {
  if (info && info->si_addr && FaultRegistry::instance().dispatch(info->si_addr)) {
    return;  // resolved; the faulting instruction retries
  }
  // Not ours: restore the default action and re-raise so genuine bugs
  // still produce a core dump with the right address.
  signal(sig, SIG_DFL);
  raise(sig);
}

int to_native(Prot p) {
  switch (p) {
    case Prot::kNone: return PROT_NONE;
    case Prot::kRead: return PROT_READ;
    case Prot::kReadWrite: return PROT_READ | PROT_WRITE;
  }
  return PROT_NONE;
}

}  // namespace

Region::Region(size_t bytes, size_t page_bytes) : bytes_(bytes), page_(page_bytes) {
  LOTS_CHECK(bytes_ % page_ == 0, "Region size must be page aligned");
  void* p = ::mmap(nullptr, bytes_, PROT_READ | PROT_WRITE, MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) throw SystemError("Region: mmap failed");
  base_ = static_cast<uint8_t*>(p);
  state_.assign(pages(), Prot::kReadWrite);
  FaultRegistry::instance().add(this);
}

Region::~Region() {
  FaultRegistry::instance().remove(this);
  if (base_) ::munmap(base_, bytes_);
}

void Region::set_protection(size_t page_index, Prot p) {
  LOTS_CHECK(page_index < pages(), "set_protection: page out of range");
  if (state_[page_index] == p) return;
  if (::mprotect(base_ + page_index * page_, page_, to_native(p)) != 0) {
    throw SystemError("mprotect failed");
  }
  state_[page_index] = p;
}

bool Region::handle_fault(void* addr) {
  faults_.fetch_add(1, std::memory_order_relaxed);
  const size_t idx = page_index(addr);
  const Prot cur = state_[idx];
  if (cur == Prot::kReadWrite) {
    // Protection race with a concurrent set_protection: retry the access.
    return true;
  }
  const bool is_write = (cur == Prot::kRead);
  if (!on_fault_) return false;
  return on_fault_(*this, idx, is_write);
}

FaultRegistry& FaultRegistry::instance() {
  static FaultRegistry reg;
  return reg;
}

void FaultRegistry::add(Region* r) {
  if (!handler_installed_.exchange(true)) {
    struct sigaction sa{};
    sa.sa_sigaction = sigsegv_trampoline;
    sa.sa_flags = SA_SIGINFO | SA_NODEFER;
    sigemptyset(&sa.sa_mask);
    LOTS_CHECK(sigaction(SIGSEGV, &sa, nullptr) == 0, "sigaction(SIGSEGV) failed");
    LOTS_CHECK(sigaction(SIGBUS, &sa, nullptr) == 0, "sigaction(SIGBUS) failed");
  }
  for (auto& slot : regions_) {
    Region* expected = nullptr;
    if (slot.compare_exchange_strong(expected, r)) return;
  }
  LOTS_CHECK(false, "FaultRegistry: too many regions");
}

void FaultRegistry::remove(Region* r) {
  for (auto& slot : regions_) {
    Region* expected = r;
    if (slot.compare_exchange_strong(expected, nullptr)) return;
  }
}

bool FaultRegistry::dispatch(void* addr) {
  for (auto& slot : regions_) {
    Region* r = slot.load(std::memory_order_acquire);
    if (r && r->contains(addr)) return r->handle_fault(addr);
  }
  return false;
}

}  // namespace lots::vm
