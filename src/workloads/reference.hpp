// Input generators, sequential reference implementations and verifiers
// for the paper's four applications (§4.1): ME (merge sort), LU
// (factorization), SOR (red-black successive over-relaxation) and RX
// (radix sort). The DSM implementations in apps_lots/apps_jia are
// checked against these on every run — a DSM benchmark that returns
// wrong answers measures nothing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lots::work {

/// Deterministic pseudo-random keys (uniform 32-bit, optionally masked).
std::vector<int32_t> gen_keys(size_t n, uint64_t seed, uint32_t mask = 0x7FFFFFFF);

/// Deterministic diagonally-dominant matrix (LU-factorable without
/// pivoting), row-major n*n.
std::vector<double> gen_matrix(size_t n, uint64_t seed);

/// Deterministic grid with fixed boundary values for SOR.
std::vector<double> gen_grid(size_t n, uint64_t seed);

// ---- sequential references ----
std::vector<int32_t> seq_sort(std::vector<int32_t> keys);
/// In-place LU without pivoting; returns false on a tiny pivot.
bool seq_lu(std::vector<double>& a, size_t n);
/// Red-black Gauss-Seidel sweeps over an n*n grid (interior points).
void seq_sor(std::vector<double>& grid, size_t n, int iterations);
/// LSD radix sort with 8-bit digits (the RX algorithm).
std::vector<int32_t> seq_radix(std::vector<int32_t> keys, int passes);

// ---- verifiers ----
bool is_sorted_permutation(const std::vector<int32_t>& input, const std::vector<int32_t>& output);
/// Max absolute elementwise difference.
double max_abs_diff(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace lots::work
