// LOTS implementations of ME / LU / SOR / RX (paper §4.1).
//
// Access patterns are written to match the paper's analysis:
//  * ME  — chunk objects migrate between merging processes; barrier-only
//          synchronization; only the merging phase is timed (the paper
//          excludes local sorting).
//  * LU  — one object per matrix row: readers pull the pivot row, the
//          owner updates its own rows; no false sharing by construction.
//  * SOR — one object per grid row; every row has a single writer for
//          the whole program; slice-edge rows are read-shared.
//  * RX  — 256 shared bucket objects plus per-process histogram objects;
//          buckets are multi-writer (merged at the home at barriers),
//          the ping-pong pattern that costs LOTS at p=8.
#include <algorithm>
#include <array>
#include <cmath>

#include "common/clock.hpp"
#include "core/api.hpp"
#include "workloads/apps.hpp"
#include "workloads/reference.hpp"

namespace lots::work {
namespace {

using core::Pointer;
using core::Runtime;

/// Snapshot the run's counters into an AppResult. Only the ranks hosted
/// by this process contribute (all of them in-proc; one per process
/// under lots_launch).
void collect(Runtime& rt, AppResult& r) {
  NodeStats total;
  rt.aggregate_stats(total);
  r.msgs = total.msgs_sent.load();
  r.bytes = total.bytes_sent.load();
  r.fetches = total.object_fetches.load();
  r.diff_words = total.diff_words_sent.load();
  r.invalidations = total.invalidations.load();
  r.swap_ins = total.swap_ins.load();
  r.swap_outs = total.swap_outs.load();
  r.access_checks = total.access_checks.load();
  r.fetch_pipelined = total.fetch_pipelined.load();
  r.prefetch_issued = total.prefetch_issued.load();
  r.prefetch_hits = total.prefetch_hits.load();
  r.prefetch_wasted = total.prefetch_wasted.load();
  r.fetch_stall_us = total.fetch_stall_us.load();
  uint64_t net = 0, disk = 0;
  for (core::Node* n : rt.local_nodes()) {
    net = std::max(net, n->stats().net_wait_us.load());
    disk = std::max(disk, n->stats().disk_wait_us.load());
  }
  r.modeled_net_us = net;
  r.modeled_disk_us = disk;
  r.rank = rt.local_nodes().front()->rank();
}

/// Reset counters before the timed phase: rank 0 owns all nodes
/// in-proc; each process resets its own node in multi-process runs. One
/// app thread per resetting process does the store (hybrid runs call
/// this from every thread). The run_barrier orders the reset before
/// anyone starts timing.
void phase_start(int rank, Runtime& rt) {
  lots::barrier();
  if ((rank == 0 || !rt.single_process()) && lots::my_thread() == 0) rt.reset_stats();
  lots::run_barrier();
}

/// Guarantees the largest single object fits the alloc cap (dmm/2) with
/// headroom; LOTS swaps to disk if the working set still exceeds the
/// DMM, so this only sets the hard single-object bound.
Config with_dmm_floor(const Config& cfg, size_t largest_object_bytes) {
  Config c = cfg;
  const size_t floor_bytes = 4 * largest_object_bytes + (1u << 20);
  if (c.dmm_bytes < floor_bytes) {
    c.dmm_bytes = (floor_bytes + c.page_bytes - 1) / c.page_bytes * c.page_bytes;
  }
  return c;
}

}  // namespace

// ---------------------------------------------------------------------------
// ME — parallel merge sort (timed phase: merging only, as in the paper)
// ---------------------------------------------------------------------------

AppResult lots_me(const Config& cfg, size_t n, uint64_t seed) {
  AppResult result;
  const int p = cfg.nprocs;
  // ME's merge tree is still rank-partitioned: refuse hybrid configs
  // loudly rather than let M threads silently duplicate each rank's
  // merges (SOR and LU are the hybrid-ported benches).
  LOTS_CHECK(cfg.threads_per_node == 1,
             "lots_me is not ported to threads_per_node > 1; use SOR or LU for hybrid runs");
  LOTS_CHECK((p & (p - 1)) == 0, "ME requires a power-of-two process count");
  n = n / static_cast<size_t>(p) * static_cast<size_t>(p);
  const auto input = gen_keys(n, seed);
  const size_t chunk = n / static_cast<size_t>(p);

  Runtime rt(with_dmm_floor(cfg, n * 4));
  rt.run([&](int rank) {
    // Stage 0 chunks + one output object per merge of every stage.
    std::vector<Pointer<int32_t>> cur(static_cast<size_t>(p));
    for (auto& c : cur) c.alloc(chunk);

    // Local sort (not timed, per the paper's metric).
    {
      std::vector<int32_t> mine(input.begin() + static_cast<ptrdiff_t>(chunk * static_cast<size_t>(rank)),
                                input.begin() + static_cast<ptrdiff_t>(chunk * static_cast<size_t>(rank + 1)));
      std::sort(mine.begin(), mine.end());
      auto& c = cur[static_cast<size_t>(rank)];
      for (size_t i = 0; i < chunk; ++i) c[i] = mine[i];
    }
    phase_start(rank, rt);
    const uint64_t t0 = now_us();

    size_t len = chunk;
    for (int step = 1; step < p; step *= 2) {
      // Collective allocation of this stage's outputs.
      std::vector<Pointer<int32_t>> next;
      for (int r = 0; r < p; r += 2 * step) {
        next.emplace_back();
        next.back().alloc(2 * len);
      }
      if (rank % (2 * step) == 0) {
        auto& left = cur[static_cast<size_t>(rank)];
        auto& right = cur[static_cast<size_t>(rank + step)];
        auto& out = next[static_cast<size_t>(rank / (2 * step))];
        size_t i = 0, j = 0, k = 0;
        while (i < len && j < len) {
          const int32_t l = left[i], r = right[j];
          if (l <= r) {
            out[k++] = l;
            ++i;
          } else {
            out[k++] = r;
            ++j;
          }
        }
        while (i < len) out[k++] = left[i++];
        while (j < len) out[k++] = right[j++];
      }
      lots::barrier();
      // Re-index: merged outputs become the inputs of the next stage.
      std::vector<Pointer<int32_t>> compact(static_cast<size_t>(p));
      for (int r = 0; r < p; r += 2 * step) {
        compact[static_cast<size_t>(r)] = next[static_cast<size_t>(r / (2 * step))];
      }
      cur = std::move(compact);
      len *= 2;
    }
    if (rank == 0) {
      result.wall_s = static_cast<double>(now_us() - t0) / 1e6;
      std::vector<int32_t> out(n);
      auto& final_chunk = cur[0];
      for (size_t i = 0; i < n; ++i) out[i] = final_chunk[i];
      result.ok = is_sorted_permutation(input, out);
    }
    lots::barrier();
  });
  collect(rt, result);
  return result;
}

// ---------------------------------------------------------------------------
// LU — right-looking factorization, cyclic row ownership, row objects
// ---------------------------------------------------------------------------

AppResult lots_lu(const Config& cfg, size_t n, uint64_t seed) {
  AppResult result;
  const auto a0 = gen_matrix(n, seed);

  Runtime rt(with_dmm_floor(cfg, n * 8));
  rt.run([&](int rank) {
    // Hybrid decomposition like SOR: cyclic row ownership over the flat
    // worker space, so any process/thread split of W workers factors
    // the same rows in the same barrier-delimited steps.
    const int W = lots::num_workers();
    const int w = lots::my_worker();
    std::vector<Pointer<double>> rows(n);
    for (auto& r : rows) r.alloc(n);
    for (size_t i = 0; i < n; ++i) {
      if (static_cast<int>(i % static_cast<size_t>(W)) == w) {
        auto& row = rows[i];
        for (size_t j = 0; j < n; ++j) row[j] = a0[i * n + j];
      }
    }
    phase_start(rank, rt);
    const uint64_t t0 = now_us();

    std::vector<double> pivot_row(n);
    for (size_t k = 0; k < n; ++k) {
      // Everyone snapshots the pivot row (single fetch, then local use).
      {
        auto& rk = rows[k];
        for (size_t j = k; j < n; ++j) pivot_row[j] = rk[j];
      }
      const double pivot = pivot_row[k];
      for (size_t i = k + 1; i < n; ++i) {
        if (static_cast<int>(i % static_cast<size_t>(W)) != w) continue;
        auto& ri = rows[i];
        const double f = ri[k] / pivot;
        ri[k] = f;
        for (size_t j = k + 1; j < n; ++j) ri[j] -= f * pivot_row[j];
      }
      lots::barrier();
    }
    if (w == 0) {
      result.wall_s = static_cast<double>(now_us() - t0) / 1e6;
      std::vector<double> mine(n * n);
      for (size_t i = 0; i < n; ++i) {
        auto& row = rows[i];
        for (size_t j = 0; j < n; ++j) mine[i * n + j] = row[j];
      }
      std::vector<double> ref = a0;
      result.ok = seq_lu(ref, n) && max_abs_diff(mine, ref) < 1e-6;
    }
    lots::barrier();
  });
  collect(rt, result);
  return result;
}

// ---------------------------------------------------------------------------
// SOR — red-black sweeps, block slices, one object per row
// ---------------------------------------------------------------------------

AppResult lots_sor(const Config& cfg, size_t n, int iterations, uint64_t seed) {
  AppResult result;
  const auto g0 = gen_grid(n, seed);

  Runtime rt(with_dmm_floor(cfg, n * 8));
  rt.run([&](int rank) {
    // Hybrid N-process × M-thread decomposition: rows are sliced over
    // the flat worker space (nprocs × threads_per_node), so any split of
    // W workers into processes and threads computes the same rows in
    // the same barrier-delimited phases — and therefore bit-identical
    // grids. Threads of one rank share the node's objects; each row
    // still has a single writer for the whole program.
    const int W = lots::num_workers();
    const int w = lots::my_worker();
    std::vector<Pointer<double>> rows(n);
    for (auto& r : rows) r.alloc(n);
    const size_t lo = n * static_cast<size_t>(w) / static_cast<size_t>(W);
    const size_t hi = n * static_cast<size_t>(w + 1) / static_cast<size_t>(W);
    for (size_t i = lo; i < hi; ++i) {
      auto& row = rows[i];
      for (size_t j = 0; j < n; ++j) row[j] = g0[i * n + j];
    }
    phase_start(rank, rt);
    const uint64_t t0 = now_us();

    for (int it = 0; it < iterations; ++it) {
      for (int colour = 0; colour < 2; ++colour) {
        lots::barrier();
        for (size_t i = std::max<size_t>(lo, 1); i < std::min(hi, n - 1); ++i) {
          auto& up = rows[i - 1];
          auto& row = rows[i];
          auto& down = rows[i + 1];
          for (size_t j = 1; j + 1 < n; ++j) {
            if (((i + j) & 1) != static_cast<size_t>(colour)) continue;
            row[j] = 0.25 * (up[j] + down[j] + row[j - 1] + row[j + 1]);
          }
        }
      }
    }
    lots::barrier();
    if (w == 0) {
      result.wall_s = static_cast<double>(now_us() - t0) / 1e6;
      std::vector<double> mine(n * n);
      for (size_t i = 0; i < n; ++i) {
        auto& row = rows[i];
        for (size_t j = 0; j < n; ++j) mine[i * n + j] = row[j];
      }
      std::vector<double> ref = g0;
      seq_sor(ref, n, iterations);
      result.ok = max_abs_diff(mine, ref) < 1e-9;
    }
    lots::barrier();
  });
  collect(rt, result);
  return result;
}

// ---------------------------------------------------------------------------
// RX — LSD radix sort, 256 shared bucket objects (paper: page multiples)
// ---------------------------------------------------------------------------

AppResult lots_rx(const Config& cfg, size_t n, int passes, uint64_t seed) {
  AppResult result;
  const int p = cfg.nprocs;
  // RX's per-process histograms are still rank-partitioned: refuse
  // hybrid configs loudly (SOR and LU are the hybrid-ported benches).
  LOTS_CHECK(cfg.threads_per_node == 1,
             "lots_rx is not ported to threads_per_node > 1; use SOR or LU for hybrid runs");
  n = n / static_cast<size_t>(p) * static_cast<size_t>(p);
  // Mask keys so `passes` 8-bit digits fully sort them.
  const uint32_t mask = passes >= 4 ? 0x7FFFFFFFu : ((1u << (8 * passes)) - 1);
  const auto input = gen_keys(n, seed, mask);
  const size_t slice = n / static_cast<size_t>(p);
  // Bucket capacity: 4x the uniform expectation, rounded to page ints
  // (paper: each bucket is an integral multiple of a page).
  const size_t page_ints = cfg.page_bytes / 4;
  const size_t cap = ((4 * n / 256) / page_ints + 1) * page_ints;

  Runtime rt(with_dmm_floor(cfg, cap * 4));
  rt.run([&](int rank) {
    std::vector<Pointer<int32_t>> buckets(256);
    for (auto& b : buckets) b.alloc(cap);
    std::vector<Pointer<int32_t>> hists(static_cast<size_t>(p));
    for (auto& h : hists) h.alloc(256);

    std::vector<int32_t> mine(input.begin() + static_cast<ptrdiff_t>(slice * static_cast<size_t>(rank)),
                              input.begin() + static_cast<ptrdiff_t>(slice * static_cast<size_t>(rank + 1)));
    phase_start(rank, rt);
    const uint64_t t0 = now_us();

    for (int pass = 0; pass < passes; ++pass) {
      const int shift = pass * 8;
      auto digit = [shift](int32_t k) {
        return static_cast<size_t>((static_cast<uint32_t>(k) >> shift) & 0xFF);
      };
      // Local histogram into my shared histogram object.
      {
        std::array<int32_t, 256> h{};
        for (int32_t k : mine) ++h[digit(k)];
        auto& hobj = hists[static_cast<size_t>(rank)];
        for (size_t b = 0; b < 256; ++b) hobj[b] = h[b];
      }
      lots::barrier();
      // Replicated prefix computation from all histograms.
      std::array<size_t, 256> total{};
      std::array<size_t, 256> my_off{};
      for (size_t b = 0; b < 256; ++b) {
        for (int r = 0; r < p; ++r) {
          const auto v = static_cast<size_t>(hists[static_cast<size_t>(r)][b]);
          if (r == rank) my_off[b] = total[b];
          total[b] += v;
        }
        LOTS_CHECK(total[b] <= cap, "RX bucket overflow: increase capacity");
      }
      // Scatter into the shared buckets. Paper: "each bucket ... is
      // accessed by a processor at a time (concurrent access is
      // prohibited by barriers)" — the serialized rounds make every
      // bucket single-writer per interval, so its home migrates to the
      // current writer at each barrier and is requested right back by
      // the next one: the ping-pong pattern that erodes LOTS' edge as p
      // grows (the paper's own negative result at p=8).
      for (int round = 0; round < p; ++round) {
        if (round == rank) {
          for (int32_t k : mine) {
            const size_t b = digit(k);
            buckets[b][my_off[b]++] = k;
          }
        }
        lots::barrier();
      }
      // Gather my new slice from the global bucket order.
      std::array<size_t, 256> bucket_start{};
      size_t acc = 0;
      for (size_t b = 0; b < 256; ++b) {
        bucket_start[b] = acc;
        acc += total[b];
      }
      const size_t gpos_lo = slice * static_cast<size_t>(rank);
      const size_t gpos_hi = gpos_lo + slice;
      mine.clear();
      for (size_t b = 0; b < 256 && mine.size() < slice; ++b) {
        const size_t b_lo = bucket_start[b], b_hi = b_lo + total[b];
        const size_t take_lo = std::max(b_lo, gpos_lo), take_hi = std::min(b_hi, gpos_hi);
        for (size_t g = take_lo; g < take_hi; ++g) {
          mine.push_back(buckets[b][g - b_lo]);
        }
      }
      lots::barrier();
    }
    if (rank == 0) {
      result.wall_s = static_cast<double>(now_us() - t0) / 1e6;
      // After the final scatter, the buckets in order ARE the sorted
      // sequence; read them back (remote fetches) and verify.
      std::array<size_t, 256> total{};
      for (size_t b = 0; b < 256; ++b) {
        for (int r = 0; r < p; ++r) {
          total[b] += static_cast<size_t>(hists[static_cast<size_t>(r)][b]);
        }
      }
      std::vector<int32_t> out;
      out.reserve(n);
      for (size_t b = 0; b < 256; ++b) {
        for (size_t i = 0; i < total[b]; ++i) out.push_back(buckets[b][i]);
      }
      result.ok = is_sorted_permutation(input, out);
    }
    lots::barrier();
  });
  collect(rt, result);
  return result;
}

}  // namespace lots::work
