// The paper's four benchmark applications (§4.1), implemented for both
// DSM backends, with built-in verification against the sequential
// references. Each run returns an AppResult combining measured wall time
// of the paper's measured phase with the modeled network/disk time
// accumulated from actual protocol traffic (DESIGN.md §1).
#pragma once

#include <cstdint>

#include "common/config.hpp"

namespace lots::work {

struct AppResult {
  bool ok = false;          ///< output verified against the reference
                            ///< (set by rank 0 only — in multi-process
                            ///< runs other ranks report ok == false)
  int rank = 0;             ///< reporting rank: 0 in-proc; this
                            ///< process's bootstrap rank under lots_launch
  double wall_s = 0.0;      ///< measured wall time of the timed phase
  uint64_t modeled_net_us = 0;   ///< max-over-nodes modeled network wait
  uint64_t modeled_disk_us = 0;  ///< max-over-nodes modeled disk wait
  // aggregated protocol counters (all nodes)
  uint64_t msgs = 0;
  uint64_t bytes = 0;
  uint64_t fetches = 0;      ///< object or page fetches
  uint64_t diff_words = 0;
  uint64_t invalidations = 0;
  uint64_t swap_ins = 0;
  uint64_t swap_outs = 0;
  uint64_t access_checks = 0;
  // async fetch engine (LOTS backend only; zero for JIAJIA)
  uint64_t fetch_pipelined = 0;
  uint64_t prefetch_issued = 0;
  uint64_t prefetch_hits = 0;
  uint64_t prefetch_wasted = 0;
  uint64_t fetch_stall_us = 0;

  /// Modeled execution time: measured compute + modeled waits.
  [[nodiscard]] double time_s() const {
    return wall_s + static_cast<double>(modeled_net_us + modeled_disk_us) / 1e6;
  }
};

// ---- LOTS (object-based, mixed protocol) ----
AppResult lots_me(const Config& cfg, size_t n, uint64_t seed);
AppResult lots_lu(const Config& cfg, size_t n, uint64_t seed);
AppResult lots_sor(const Config& cfg, size_t n, int iterations, uint64_t seed);
AppResult lots_rx(const Config& cfg, size_t n, int passes, uint64_t seed);

// ---- JIAJIA baseline (page-based, home-based) ----
AppResult jia_me(const Config& cfg, size_t n, uint64_t seed);
AppResult jia_lu(const Config& cfg, size_t n, uint64_t seed);
AppResult jia_sor(const Config& cfg, size_t n, int iterations, uint64_t seed);
AppResult jia_rx(const Config& cfg, size_t n, int passes, uint64_t seed);

}  // namespace lots::work
