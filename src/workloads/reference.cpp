#include "workloads/reference.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace lots::work {

std::vector<int32_t> gen_keys(size_t n, uint64_t seed, uint32_t mask) {
  Rng rng(seed);
  std::vector<int32_t> keys(n);
  for (auto& k : keys) k = static_cast<int32_t>(rng.next_u32() & mask);
  return keys;
}

std::vector<double> gen_matrix(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> a(n * n);
  for (auto& v : a) v = rng.unit() - 0.5;
  // Diagonal dominance keeps pivot-free LU stable.
  for (size_t i = 0; i < n; ++i) a[i * n + i] += static_cast<double>(n);
  return a;
}

std::vector<double> gen_grid(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> g(n * n, 0.0);
  for (size_t j = 0; j < n; ++j) {
    g[j] = 1.0 + rng.unit();                  // hot top edge
    g[(n - 1) * n + j] = rng.unit() * 0.25;   // cool bottom edge
  }
  return g;
}

std::vector<int32_t> seq_sort(std::vector<int32_t> keys) {
  std::sort(keys.begin(), keys.end());
  return keys;
}

bool seq_lu(std::vector<double>& a, size_t n) {
  for (size_t k = 0; k < n; ++k) {
    const double pivot = a[k * n + k];
    if (std::fabs(pivot) < 1e-12) return false;
    for (size_t i = k + 1; i < n; ++i) {
      const double f = a[i * n + k] / pivot;
      a[i * n + k] = f;
      for (size_t j = k + 1; j < n; ++j) a[i * n + j] -= f * a[k * n + j];
    }
  }
  return true;
}

void seq_sor(std::vector<double>& grid, size_t n, int iterations) {
  // Red-black ordering: update cells with (i+j) even, then odd, using
  // the latest neighbour values — matches the parallel schedule exactly.
  for (int it = 0; it < iterations; ++it) {
    for (int colour = 0; colour < 2; ++colour) {
      for (size_t i = 1; i + 1 < n; ++i) {
        for (size_t j = 1; j + 1 < n; ++j) {
          if (((i + j) & 1) != static_cast<size_t>(colour)) continue;
          grid[i * n + j] = 0.25 * (grid[(i - 1) * n + j] + grid[(i + 1) * n + j] +
                                    grid[i * n + j - 1] + grid[i * n + j + 1]);
        }
      }
    }
  }
}

std::vector<int32_t> seq_radix(std::vector<int32_t> keys, int passes) {
  std::vector<int32_t> out(keys.size());
  for (int pass = 0; pass < passes; ++pass) {
    const int shift = pass * 8;
    size_t count[256] = {};
    for (int32_t k : keys) ++count[(static_cast<uint32_t>(k) >> shift) & 0xFF];
    size_t off[256];
    size_t acc = 0;
    for (int b = 0; b < 256; ++b) {
      off[b] = acc;
      acc += count[b];
    }
    for (int32_t k : keys) out[off[(static_cast<uint32_t>(k) >> shift) & 0xFF]++] = k;
    keys.swap(out);
  }
  return keys;
}

bool is_sorted_permutation(const std::vector<int32_t>& input, const std::vector<int32_t>& output) {
  if (input.size() != output.size()) return false;
  if (!std::is_sorted(output.begin(), output.end())) return false;
  std::vector<int32_t> a = input, b = output;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

double max_abs_diff(const std::vector<double>& a, const std::vector<double>& b) {
  double worst = a.size() == b.size() ? 0.0 : 1e30;
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    worst = std::max(worst, std::fabs(a[i] - b[i]));
  }
  return worst;
}

}  // namespace lots::work
