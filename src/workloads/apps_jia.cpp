// JIAJIA-baseline implementations of ME / LU / SOR / RX (paper §4.1).
//
// Identical algorithms and schedules to apps_lots.cpp, but on the flat
// page-based shared heap: matrices are contiguous row-major arrays, so a
// row that is not an integral multiple of a page shares pages with its
// neighbours — the false-sharing behaviour the paper attributes JIAJIA's
// LU slowdown to. Readers pull whole pages from fixed homes.
#include <algorithm>
#include <array>
#include <cstring>

#include "common/clock.hpp"
#include "common/error.hpp"
#include "jiajia/jia_runtime.hpp"
#include "workloads/apps.hpp"
#include "workloads/reference.hpp"

namespace lots::work {
namespace {

using jia::JiaNode;
using jia::JiaRuntime;

void collect(JiaRuntime& rt, AppResult& r) {
  NodeStats total;
  rt.aggregate_stats(total);
  r.msgs = total.msgs_sent.load();
  r.bytes = total.bytes_sent.load();
  r.fetches = total.page_fetches.load();
  r.diff_words = total.diff_words_sent.load();
  r.invalidations = total.invalidations.load();
  uint64_t net = 0;
  for (int i = 0; i < rt.nprocs(); ++i) {
    net = std::max(net, rt.node(i).stats().net_wait_us.load());
  }
  r.modeled_net_us = net;
}

void reset_stats(JiaRuntime& rt) {
  for (int i = 0; i < rt.nprocs(); ++i) rt.node(i).stats().reset();
}

void phase_start(int rank, JiaRuntime& rt) {
  JiaRuntime::self().barrier();
  if (rank == 0) reset_stats(rt);
  JiaRuntime::self().barrier();
}

}  // namespace

// ---------------------------------------------------------------------------
// ME
// ---------------------------------------------------------------------------

AppResult jia_me(const Config& cfg, size_t n, uint64_t seed) {
  AppResult result;
  const int p = cfg.nprocs;
  LOTS_CHECK((p & (p - 1)) == 0, "ME requires a power-of-two process count");
  n = n / static_cast<size_t>(p) * static_cast<size_t>(p);
  const auto input = gen_keys(n, seed);
  const size_t chunk = n / static_cast<size_t>(p);

  Config c = cfg;
  c.jia_heap_bytes = std::max<size_t>(c.jia_heap_bytes, 4 * n * 4 + (1u << 20));
  c.jia_heap_bytes = (c.jia_heap_bytes + c.page_bytes - 1) / c.page_bytes * c.page_bytes;
  JiaRuntime rt(c);
  rt.run([&](int rank) {
    const size_t a_off = rt.alloc(n * 4);
    const size_t b_off = rt.alloc(n * 4);
    int32_t* a = rt.at<int32_t>(a_off);
    int32_t* b = rt.at<int32_t>(b_off);
    {
      std::vector<int32_t> mine(input.begin() + static_cast<ptrdiff_t>(chunk * static_cast<size_t>(rank)),
                                input.begin() + static_cast<ptrdiff_t>(chunk * static_cast<size_t>(rank + 1)));
      std::sort(mine.begin(), mine.end());
      std::memcpy(a + chunk * static_cast<size_t>(rank), mine.data(), chunk * 4);
    }
    phase_start(rank, rt);
    const uint64_t t0 = now_us();

    size_t len = chunk;
    int32_t* src = a;
    int32_t* dst = b;
    for (int step = 1; step < p; step *= 2) {
      JiaRuntime::self().barrier();
      if (rank % (2 * step) == 0) {
        const size_t base = chunk * static_cast<size_t>(rank);
        const int32_t* left = src + base;
        const int32_t* right = src + base + len;
        int32_t* out = dst + base;
        size_t i = 0, j = 0, k = 0;
        while (i < len && j < len) out[k++] = (left[i] <= right[j]) ? left[i++] : right[j++];
        while (i < len) out[k++] = left[i++];
        while (j < len) out[k++] = right[j++];
      }
      JiaRuntime::self().barrier();
      std::swap(src, dst);
      len *= 2;
    }
    if (rank == 0) {
      result.wall_s = static_cast<double>(now_us() - t0) / 1e6;
      std::vector<int32_t> out(src, src + n);
      result.ok = is_sorted_permutation(input, out);
    }
    JiaRuntime::self().barrier();
  });
  collect(rt, result);
  return result;
}

// ---------------------------------------------------------------------------
// LU — contiguous row-major matrix: rows share pages (false sharing)
// ---------------------------------------------------------------------------

AppResult jia_lu(const Config& cfg, size_t n, uint64_t seed) {
  AppResult result;
  const int p = cfg.nprocs;
  const auto a0 = gen_matrix(n, seed);

  Config c = cfg;
  c.jia_heap_bytes = std::max<size_t>(c.jia_heap_bytes, n * n * 8 + (1u << 20));
  c.jia_heap_bytes = (c.jia_heap_bytes + c.page_bytes - 1) / c.page_bytes * c.page_bytes;
  JiaRuntime rt(c);
  rt.run([&](int rank) {
    const size_t m_off = rt.alloc(n * n * 8);
    double* m = rt.at<double>(m_off);
    for (size_t i = 0; i < n; ++i) {
      if (static_cast<int>(i % static_cast<size_t>(p)) == rank) {
        std::memcpy(m + i * n, a0.data() + i * n, n * 8);
      }
    }
    phase_start(rank, rt);
    const uint64_t t0 = now_us();

    std::vector<double> pivot_row(n);
    for (size_t k = 0; k < n; ++k) {
      std::memcpy(pivot_row.data() + k, m + k * n + k, (n - k) * 8);
      const double pivot = pivot_row[k];
      for (size_t i = k + 1; i < n; ++i) {
        if (static_cast<int>(i % static_cast<size_t>(p)) != rank) continue;
        double* ri = m + i * n;
        const double f = ri[k] / pivot;
        ri[k] = f;
        for (size_t j = k + 1; j < n; ++j) ri[j] -= f * pivot_row[j];
      }
      JiaRuntime::self().barrier();
    }
    if (rank == 0) {
      result.wall_s = static_cast<double>(now_us() - t0) / 1e6;
      std::vector<double> mine(m, m + n * n);
      std::vector<double> ref = a0;
      result.ok = seq_lu(ref, n) && max_abs_diff(mine, ref) < 1e-6;
    }
    JiaRuntime::self().barrier();
  });
  collect(rt, result);
  return result;
}

// ---------------------------------------------------------------------------
// SOR
// ---------------------------------------------------------------------------

AppResult jia_sor(const Config& cfg, size_t n, int iterations, uint64_t seed) {
  AppResult result;
  const int p = cfg.nprocs;
  const auto g0 = gen_grid(n, seed);

  Config c = cfg;
  c.jia_heap_bytes = std::max<size_t>(c.jia_heap_bytes, n * n * 8 + (1u << 20));
  c.jia_heap_bytes = (c.jia_heap_bytes + c.page_bytes - 1) / c.page_bytes * c.page_bytes;
  JiaRuntime rt(c);
  rt.run([&](int rank) {
    const size_t g_off = rt.alloc(n * n * 8);
    double* g = rt.at<double>(g_off);
    const size_t lo = n * static_cast<size_t>(rank) / static_cast<size_t>(p);
    const size_t hi = n * static_cast<size_t>(rank + 1) / static_cast<size_t>(p);
    for (size_t i = lo; i < hi; ++i) std::memcpy(g + i * n, g0.data() + i * n, n * 8);
    phase_start(rank, rt);
    const uint64_t t0 = now_us();

    for (int it = 0; it < iterations; ++it) {
      for (int colour = 0; colour < 2; ++colour) {
        JiaRuntime::self().barrier();
        for (size_t i = std::max<size_t>(lo, 1); i < std::min(hi, n - 1); ++i) {
          for (size_t j = 1; j + 1 < n; ++j) {
            if (((i + j) & 1) != static_cast<size_t>(colour)) continue;
            g[i * n + j] =
                0.25 * (g[(i - 1) * n + j] + g[(i + 1) * n + j] + g[i * n + j - 1] + g[i * n + j + 1]);
          }
        }
      }
    }
    JiaRuntime::self().barrier();
    if (rank == 0) {
      result.wall_s = static_cast<double>(now_us() - t0) / 1e6;
      std::vector<double> mine(g, g + n * n);
      std::vector<double> ref = g0;
      seq_sor(ref, n, iterations);
      result.ok = max_abs_diff(mine, ref) < 1e-9;
    }
    JiaRuntime::self().barrier();
  });
  collect(rt, result);
  return result;
}

// ---------------------------------------------------------------------------
// RX — page-multiple buckets in the flat heap
// ---------------------------------------------------------------------------

AppResult jia_rx(const Config& cfg, size_t n, int passes, uint64_t seed) {
  AppResult result;
  const int p = cfg.nprocs;
  n = n / static_cast<size_t>(p) * static_cast<size_t>(p);
  const uint32_t mask = passes >= 4 ? 0x7FFFFFFFu : ((1u << (8 * passes)) - 1);
  const auto input = gen_keys(n, seed, mask);
  const size_t slice = n / static_cast<size_t>(p);
  const size_t page_ints = cfg.page_bytes / 4;
  const size_t cap = ((4 * n / 256) / page_ints + 1) * page_ints;

  Config c = cfg;
  c.jia_heap_bytes = std::max<size_t>(c.jia_heap_bytes, 256 * cap * 4 + 256 * 4 * static_cast<size_t>(p) + (1u << 20));
  c.jia_heap_bytes = (c.jia_heap_bytes + c.page_bytes - 1) / c.page_bytes * c.page_bytes;
  JiaRuntime rt(c);
  rt.run([&](int rank) {
    const size_t buckets_off = rt.alloc(256 * cap * 4);  // paper: page-multiple buckets
    const size_t hists_off = rt.alloc(256 * 4 * static_cast<size_t>(p));
    int32_t* buckets = rt.at<int32_t>(buckets_off);
    int32_t* hists = rt.at<int32_t>(hists_off);

    std::vector<int32_t> mine(input.begin() + static_cast<ptrdiff_t>(slice * static_cast<size_t>(rank)),
                              input.begin() + static_cast<ptrdiff_t>(slice * static_cast<size_t>(rank + 1)));
    phase_start(rank, rt);
    const uint64_t t0 = now_us();

    for (int pass = 0; pass < passes; ++pass) {
      const int shift = pass * 8;
      auto digit = [shift](int32_t k) {
        return static_cast<size_t>((static_cast<uint32_t>(k) >> shift) & 0xFF);
      };
      {
        std::array<int32_t, 256> h{};
        for (int32_t k : mine) ++h[digit(k)];
        std::memcpy(hists + 256 * static_cast<size_t>(rank), h.data(), 256 * 4);
      }
      JiaRuntime::self().barrier();
      std::array<size_t, 256> total{};
      std::array<size_t, 256> my_off{};
      for (size_t b = 0; b < 256; ++b) {
        for (int r = 0; r < p; ++r) {
          const auto v = static_cast<size_t>(hists[256 * static_cast<size_t>(r) + b]);
          if (r == rank) my_off[b] = total[b];
          total[b] += v;
        }
        LOTS_CHECK(total[b] <= cap, "RX bucket overflow: increase capacity");
      }
      // Serialized scatter rounds, as in the LOTS implementation (the
      // paper prohibits concurrent bucket access with barriers).
      for (int round = 0; round < p; ++round) {
        if (round == rank) {
          for (int32_t k : mine) {
            const size_t b = digit(k);
            buckets[b * cap + my_off[b]++] = k;
          }
        }
        JiaRuntime::self().barrier();
      }
      std::array<size_t, 256> bucket_start{};
      size_t acc = 0;
      for (size_t b = 0; b < 256; ++b) {
        bucket_start[b] = acc;
        acc += total[b];
      }
      const size_t gpos_lo = slice * static_cast<size_t>(rank);
      const size_t gpos_hi = gpos_lo + slice;
      mine.clear();
      for (size_t b = 0; b < 256 && mine.size() < slice; ++b) {
        const size_t b_lo = bucket_start[b], b_hi = b_lo + total[b];
        const size_t take_lo = std::max(b_lo, gpos_lo), take_hi = std::min(b_hi, gpos_hi);
        for (size_t g = take_lo; g < take_hi; ++g) mine.push_back(buckets[b * cap + (g - b_lo)]);
      }
      JiaRuntime::self().barrier();
    }
    if (rank == 0) {
      result.wall_s = static_cast<double>(now_us() - t0) / 1e6;
      std::array<size_t, 256> total{};
      for (size_t b = 0; b < 256; ++b) {
        for (int r = 0; r < p; ++r) {
          total[b] += static_cast<size_t>(hists[256 * static_cast<size_t>(r) + b]);
        }
      }
      std::vector<int32_t> out;
      out.reserve(n);
      for (size_t b = 0; b < 256; ++b) {
        for (size_t i = 0; i < total[b]; ++i) out.push_back(buckets[b * cap + i]);
      }
      result.ok = is_sorted_permutation(input, out);
    }
    JiaRuntime::self().barrier();
  });
  collect(rt, result);
  return result;
}

}  // namespace lots::work
