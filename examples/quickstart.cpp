// Quickstart: the minimal LOTS program.
//
// Demonstrates the full public API surface (paper §5: "Only a minimal
// set of functions ... memory allocation function, locks and barriers"):
//   * Pointer<T> declaration + collective alloc()
//   * operator-overloaded element access and pointer arithmetic
//   * lock-guarded updates (Scope Consistency)
//   * barriers (migrating-home write-invalidate)
//
// The same program runs on either fabric — the only multi-process
// concession is the configure_from_env call — and in hybrid
// N-process × M-thread mode: work is split over the flat worker space
// (lots::my_worker() of lots::num_workers()), so every split of the
// same worker count computes the identical sum.
//
//   Build & run in one process:   ./example_quickstart
//   4 app threads in one process: LOTS_THREADS=4 ./example_quickstart
//   Run as 4 real processes over loopback UDP:
//                                 ./lots_launch -n 4 ./example_quickstart
//   2 processes × 2 app threads:  ./lots_launch -n 2 --threads 2 ./example_quickstart
#include <cstdio>

#include "cluster/env.hpp"
#include "core/api.hpp"

int main() {
  lots::Config cfg;
  cfg.nprocs = 4;
  // Under lots_launch: join the rendezvous and host ONE rank over UDP.
  // Applies LOTS_THREADS on either fabric; standalone runs default to
  // 4 ranks × 1 thread.
  if (!lots::cluster::configure_from_env(cfg) && cfg.threads_per_node > 1) {
    cfg.nprocs = 1;  // standalone hybrid demo: one node, M threads
  }

  bool ok = true;
  lots::Runtime rt(cfg);
  rt.run([&ok](int rank) {
    // Flat SPMD identity: W workers cover every app thread of every
    // node. With threads_per_node == 1 this is exactly rank/nprocs.
    const int w = lots::my_worker();
    const int W = lots::num_workers();

    // A shared vector and a shared accumulator, visible to all nodes
    // (and to all app threads of a node — alloc is collective in both
    // dimensions).
    lots::Pointer<int> data;
    lots::Pointer<long> total;
    data.alloc(1000);
    total.alloc(1);

    // Each worker fills its strided share (single-writer per element).
    for (size_t i = static_cast<size_t>(w); i < 1000; i += static_cast<size_t>(W)) {
      data[i] = static_cast<int>(i);
    }
    lots::barrier();  // publish: homes migrate, stale copies invalidate

    // Pointer arithmetic works like C++ (paper §3.3): *(data+42) reads
    // element 42 wherever its current home is.
    if (w == 0) {
      std::printf("node 0 sees data[42] = %d via *(data+42) = %d\n", data[42], *(data + 42));
    }

    // Lock-guarded reduction: updates propagate with the lock token
    // (homeless write-update); sibling threads of one node serialize on
    // the node-local lock mutex before entering the manager protocol.
    long local = 0;
    for (size_t i = static_cast<size_t>(w); i < 1000; i += static_cast<size_t>(W)) {
      local += data[i];
    }
    lots::acquire(0);
    total[0] = total[0] + local;
    lots::release(0);
    lots::barrier();

    if (w == 0) {
      const long sum = total[0];
      ok = (sum == 499500) && (data[42] == 42);
      std::printf("sum(0..999) computed by %d nodes x %d threads = %ld (expected 499500)\n",
                  lots::num_procs(), lots::num_threads(), sum);
      std::printf("QUICKSTART_%s p=%d threads=%d sum=%ld\n", ok ? "OK" : "FAIL",
                  lots::num_procs(), lots::num_threads(), sum);
    }
    (void)rank;
  });
  return ok ? 0 : 1;
}
