// Quickstart: the minimal LOTS program.
//
// Demonstrates the full public API surface (paper §5: "Only a minimal
// set of functions ... memory allocation function, locks and barriers"):
//   * Pointer<T> declaration + collective alloc()
//   * operator-overloaded element access and pointer arithmetic
//   * lock-guarded updates (Scope Consistency)
//   * barriers (migrating-home write-invalidate)
//
// The same program runs on either fabric — the only multi-process
// concession is the configure_from_env call:
//
//   Build & run in one process:   ./example_quickstart
//   Run as 4 real processes over loopback UDP:
//                                 ./lots_launch -n 4 ./example_quickstart
#include <cstdio>

#include "cluster/env.hpp"
#include "core/api.hpp"

int main() {
  lots::Config cfg;
  cfg.nprocs = 4;
  // Under lots_launch: join the rendezvous and host ONE rank over UDP.
  lots::cluster::configure_from_env(cfg);

  bool ok = true;
  lots::Runtime rt(cfg);
  rt.run([&ok](int rank) {
    const int p = lots::num_procs();

    // A shared vector and a shared accumulator, visible to all nodes.
    lots::Pointer<int> data;
    lots::Pointer<long> total;
    data.alloc(1000);
    total.alloc(1);

    // Each node fills its strided share (single-writer per element).
    for (size_t i = static_cast<size_t>(rank); i < 1000; i += static_cast<size_t>(p)) {
      data[i] = static_cast<int>(i);
    }
    lots::barrier();  // publish: homes migrate, stale copies invalidate

    // Pointer arithmetic works like C++ (paper §3.3): *(data+42) reads
    // element 42 wherever its current home is.
    if (rank == 0) {
      std::printf("node 0 sees data[42] = %d via *(data+42) = %d\n", data[42], *(data + 42));
    }

    // Lock-guarded reduction: updates propagate with the lock token
    // (homeless write-update).
    long local = 0;
    for (size_t i = static_cast<size_t>(rank); i < 1000; i += static_cast<size_t>(p)) {
      local += data[i];
    }
    lots::acquire(0);
    total[0] = total[0] + local;
    lots::release(0);
    lots::barrier();

    if (rank == 0) {
      const long sum = total[0];
      ok = (sum == 499500) && (data[42] == 42);
      std::printf("sum(0..999) computed by %d nodes = %ld (expected 499500)\n", p, sum);
      std::printf("QUICKSTART_%s p=%d sum=%ld\n", ok ? "OK" : "FAIL", p, sum);
    }
  });
  return ok ? 0 : 1;
}
