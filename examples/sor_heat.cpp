// Domain example: steady-state heat distribution on a metal plate,
// solved with red-black successive over-relaxation on LOTS.
//
// This is the SOR workload of the paper's evaluation (§4.1) dressed as
// the engineering problem it approximates ("a program used to
// approximate engineering problems that involve integrations"): a plate
// with a hot top edge and cool bottom edge, one shared object per grid
// row, block slices per node, single-writer rows with read-shared
// slice edges — the access pattern that favours the migrating-home
// protocol.
//
// Build & run:  ./examples/sor_heat
#include <cstdio>

#include "core/api.hpp"

namespace {
constexpr size_t kN = 96;       // grid side
constexpr int kIterations = 64; // red+black sweeps
}  // namespace

int main() {
  lots::Config cfg;
  cfg.nprocs = 4;

  lots::Runtime rt(cfg);
  rt.run([](int rank) {
    const int p = lots::num_procs();
    std::vector<lots::Pointer<double>> plate(kN);
    for (auto& row : plate) row.alloc(kN);

    const size_t lo = kN * static_cast<size_t>(rank) / static_cast<size_t>(p);
    const size_t hi = kN * static_cast<size_t>(rank + 1) / static_cast<size_t>(p);

    // Boundary conditions: 100 C top edge, 0 C elsewhere.
    for (size_t i = lo; i < hi; ++i) {
      auto& row = plate[i];
      for (size_t j = 0; j < kN; ++j) row[j] = (i == 0) ? 100.0 : 0.0;
    }
    lots::barrier();

    for (int it = 0; it < kIterations; ++it) {
      for (int colour = 0; colour < 2; ++colour) {
        lots::barrier();
        for (size_t i = std::max<size_t>(lo, 1); i < std::min(hi, kN - 1); ++i) {
          auto& up = plate[i - 1];
          auto& row = plate[i];
          auto& down = plate[i + 1];
          for (size_t j = 1; j + 1 < kN; ++j) {
            if (((i + j) & 1) != static_cast<size_t>(colour)) continue;
            row[j] = 0.25 * (up[j] + down[j] + row[j - 1] + row[j + 1]);
          }
        }
      }
    }
    lots::barrier();

    if (rank == 0) {
      std::printf("steady-state plate temperatures after %d sweeps (%zux%zu grid, %d nodes):\n",
                  kIterations, kN, kN, p);
      for (size_t i = kN / 8; i < kN; i += kN / 4) {
        double avg = 0;
        auto& row = plate[i];
        for (size_t j = 1; j + 1 < kN; ++j) avg += row[j];
        std::printf("  depth %2zu%%: avg %.2f C\n", 100 * i / kN, avg / static_cast<double>(kN - 2));
      }
      auto& n = lots::Runtime::self();
      std::printf("protocol: %lu msgs, %lu object fetches, %lu invalidations, %lu home migrations\n",
                  n.stats().msgs_sent.load(), n.stats().object_fetches.load(),
                  n.stats().invalidations.load(), n.stats().home_migrations.load());
    }
  });
  return 0;
}
