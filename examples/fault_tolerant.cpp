// Fault tolerance: the recoverable-application pattern, end to end.
//
// This is the program shape a LOTS application must have to survive a
// worker death (ARCHITECTURE.md "Failure model and recovery"):
//
//   * run with replication on (lots_launch --replicate), so every
//     barrier also ships each homed object's dirty words to its backup;
//   * structure the computation as idempotent supersteps: write ONLY
//     the target array from values of the source array, so redoing a
//     half-done superstep recomputes bit-identical values;
//   * partition work over lots::alive() recomputed at the top of every
//     attempt, so the dead rank's share re-covers automatically;
//   * catch lots::WorkerDied around the superstep on every app thread,
//     call lots::recover() (a collective, like barrier()), and redo the
//     superstep without advancing the iteration counter.
//
// The result is self-verifying: the recurrence is content-deterministic
// (every cell depends only on (row, index, iteration), never on which
// rank computed it), so rank 0 replays it locally in private memory and
// compares — a run that lost a worker mid-flight must match exactly.
//
//   Clean run over loopback UDP:
//     ./lots_launch -n 4 --replicate ./example_fault_tolerant
//   Chaos run — rank 2 is SIGKILLed the moment its 2nd barrier commits:
//     ./lots_launch -n 4 --replicate --kill-rank 2 --kill-after-barrier 2
//         ./example_fault_tolerant     (one line)
#include <cstdio>
#include <vector>

#include "cluster/env.hpp"
#include "common/error.hpp"
#include "core/api.hpp"

namespace {

constexpr int kRows = 12;
constexpr size_t kRowLen = 128;
constexpr int kIters = 8;

uint32_t seed_cell(int row, size_t i) {
  return static_cast<uint32_t>(row * 1000 + static_cast<int>(i));
}

uint32_t step_cell(uint32_t self, uint32_t next, int it) {
  return self * 2654435761u + next + static_cast<uint32_t>(it);
}

}  // namespace

int main() {
  lots::Config cfg;
  cfg.nprocs = 4;
  lots::cluster::configure_from_env(cfg);

  bool ok = true;
  lots::Runtime rt(cfg);
  rt.run([&ok](int rank) {
    const int p = lots::num_procs();
    std::vector<lots::Pointer<uint32_t>> a(kRows), b(kRows);
    for (int r = 0; r < kRows; ++r) a[static_cast<size_t>(r)].alloc(kRowLen);
    for (int r = 0; r < kRows; ++r) b[static_cast<size_t>(r)].alloc(kRowLen);

    for (int r = rank; r < kRows; r += p) {
      for (size_t i = 0; i < kRowLen; ++i) a[static_cast<size_t>(r)][i] = seed_cell(r, i);
    }
    lots::barrier();

    for (int it = 0; it < kIters;) {
      try {
        // Re-partition over whoever is alive RIGHT NOW; after a death
        // the dead rank's rows land on a survivor on the redo.
        std::vector<int> live;
        for (int r = 0; r < p; ++r) {
          if (lots::alive(r)) live.push_back(r);
        }
        int me = -1;
        for (size_t i = 0; i < live.size(); ++i) {
          if (live[i] == rank) me = static_cast<int>(i);
        }
        auto& cur = (it % 2 == 0) ? a : b;
        auto& nxt = (it % 2 == 0) ? b : a;
        for (int r = 0; r < kRows; ++r) {
          if ((r + it) % static_cast<int>(live.size()) != me) continue;
          for (size_t i = 0; i < kRowLen; ++i) {
            nxt[static_cast<size_t>(r)][i] =
                step_cell(cur[static_cast<size_t>(r)][i],
                          cur[static_cast<size_t>(r)][(i + 1) % kRowLen], it);
          }
        }
        lots::barrier();
        ++it;
      } catch (const lots::WorkerDied& e) {
        std::printf("rank %d: %s — recovering\n", rank, e.what());
        // recover() itself throws WorkerDied when ANOTHER worker dies
        // mid-recovery; keep repairing until a round completes.
        for (;;) {
          try {
            lots::recover();  // collective: re-home, re-mint locks, resume
            break;
          } catch (const lots::WorkerDied&) {
          }
        }
      }
    }

    // The lowest SURVIVING rank reports — rank 0 must be as killable as
    // anyone else, and a chaos run that targets it still needs its
    // RECOVERY_OK verdict from someone.
    int reporter = 0;
    while (reporter < p && !lots::alive(reporter)) ++reporter;
    if (rank == reporter) {
      // Local replay in private memory: the ground truth no failure,
      // recovery, or re-partitioning is allowed to perturb.
      std::vector<std::vector<uint32_t>> ra(kRows, std::vector<uint32_t>(kRowLen));
      std::vector<std::vector<uint32_t>> rb = ra;
      for (int r = 0; r < kRows; ++r) {
        for (size_t i = 0; i < kRowLen; ++i) ra[static_cast<size_t>(r)][i] = seed_cell(r, i);
      }
      for (int it = 0; it < kIters; ++it) {
        auto& cur = (it % 2 == 0) ? ra : rb;
        auto& nxt = (it % 2 == 0) ? rb : ra;
        for (int r = 0; r < kRows; ++r) {
          for (size_t i = 0; i < kRowLen; ++i) {
            nxt[static_cast<size_t>(r)][i] =
                step_cell(cur[static_cast<size_t>(r)][i],
                          cur[static_cast<size_t>(r)][(i + 1) % kRowLen], it);
          }
        }
      }
      auto& fin = (kIters % 2 == 0) ? a : b;
      auto& ref = (kIters % 2 == 0) ? ra : rb;
      size_t bad = 0;
      for (int r = 0; r < kRows; ++r) {
        for (size_t i = 0; i < kRowLen; ++i) {
          if (fin[static_cast<size_t>(r)][i] != ref[static_cast<size_t>(r)][i]) ++bad;
        }
      }
      ok = (bad == 0);
      int survivors = 0;
      for (int r = 0; r < lots::num_procs(); ++r) survivors += lots::alive(r) ? 1 : 0;
      std::printf("%s p=%d survivors=%d cells=%d bad=%zu\n",
                  ok ? "RECOVERY_OK" : "RECOVERY_FAIL", lots::num_procs(), survivors,
                  kRows * static_cast<int>(kRowLen), bad);
    }
    lots::barrier();
  });

  lots::NodeStats total;
  rt.aggregate_stats(total);
  std::printf("node stats: replica_msgs=%llu replica_bytes=%llu recoveries=%llu\n",
              static_cast<unsigned long long>(total.replica_msgs.load()),
              static_cast<unsigned long long>(total.replica_bytes.load()),
              static_cast<unsigned long long>(total.recoveries.load()));
  return ok ? 0 : 1;
}
