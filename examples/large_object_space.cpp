// The headline demo (paper §4.3, Table 1): a shared object space LARGER
// than the mapping window, spilled to local disk and swapped back on
// demand — the program never notices.
//
// The paper allocated >4 GB of shared objects against a 32-bit process
// space (117.77 GB at maximum, bounded only by disk free space). Here
// the ratio is what matters: we give each node an 8 MB DMM window and
// allocate a 64 MB shared 2-D array (8x over-commit), then run the
// paper's test program: every node adds up numbers held by each row.
//
// Build & run:  ./examples/large_object_space
#include <cstdio>

#include "core/api.hpp"

int main() {
  lots::Config cfg;
  cfg.nprocs = 4;
  cfg.dmm_bytes = 8u << 20;  // the "process space" stand-in: 8 MB window
  // Model the paper's P4/Fedora disk stack so the printed disk time is
  // meaningful (Table 1's dominant cost).
  cfg.disk.seek_us = 300;
  cfg.disk.throughput_MBps = 45.0;

  constexpr size_t kRows = 256;
  constexpr size_t kIntsPerRow = 64 * 1024;  // 256 KB per row, 64 MB total
  lots::Runtime rt(cfg);

  rt.run([&](int rank) {
    const int p = lots::num_procs();
    std::vector<lots::Pointer<int>> rows(kRows);
    for (auto& r : rows) r.alloc(kIntsPerRow);

    // Owners fill their rows; the DMM overflows long before the end and
    // LOTS silently spills cold rows to disk.
    for (size_t k = static_cast<size_t>(rank); k < kRows; k += static_cast<size_t>(p)) {
      auto& row = rows[k];
      for (size_t i = 0; i < kIntsPerRow; i += 16) row[i] = static_cast<int>(k + i);
    }
    lots::barrier();

    // The paper's measurement program: every node sums across ALL rows,
    // pulling remote rows over the network and local ones from disk.
    long sum = 0;
    for (size_t k = 0; k < kRows; ++k) {
      auto& row = rows[k];
      for (size_t i = 0; i < kIntsPerRow; i += 4096) sum += row[i];
    }
    lots::barrier();

    if (rank == 0) {
      auto& n = lots::Runtime::self();
      std::printf("shared object space : %zu MB across %zu row objects\n",
                  kRows * kIntsPerRow * 4 >> 20, kRows);
      std::printf("DMM window per node : %zu MB (%.1fx over-committed)\n", cfg.dmm_bytes >> 20,
                  static_cast<double>(kRows * kIntsPerRow * 4) / static_cast<double>(cfg.dmm_bytes));
      std::printf("node 0 swap-outs    : %lu (%lu MB written to disk)\n",
                  n.stats().swap_outs.load(), n.stats().swap_bytes_out.load() >> 20);
      std::printf("node 0 swap-ins     : %lu (%lu MB read back)\n", n.stats().swap_ins.load(),
                  n.stats().swap_bytes_in.load() >> 20);
      std::printf("modeled disk time   : %.2f s (Table 1's dominant cost)\n",
                  static_cast<double>(n.stats().disk_wait_us.load()) / 1e6);
      std::printf("checksum            : %ld\n", sum);
      std::printf("disk free (bound on object space, paper: 117.77 GB): %.2f GB\n",
                  static_cast<double>(n.disk().filesystem_free_bytes()) / (1u << 30) / 1.0);
    }
  });
  return 0;
}
