// Domain example: distributed merge sort (the paper's ME workload) with
// end-to-end verification — chunk objects migrate between merging nodes,
// showcasing the migrating-home protocol on a migratory access pattern.
//
// Build & run:  ./examples/merge_sort
#include <algorithm>
#include <cstdio>

#include "core/api.hpp"
#include "workloads/apps.hpp"
#include "workloads/reference.hpp"

int main() {
  lots::Config cfg;
  cfg.nprocs = 4;

  constexpr size_t kN = 1 << 17;  // 128K keys
  const auto input = lots::work::gen_keys(kN, 2024);

  lots::Runtime rt(cfg);
  rt.run([&](int rank) {
    const int p = lots::num_procs();
    const size_t chunk = kN / static_cast<size_t>(p);
    std::vector<lots::Pointer<int32_t>> cur(static_cast<size_t>(p));
    for (auto& c : cur) c.alloc(chunk);

    // Local phase: each node sorts its own slice privately.
    std::vector<int32_t> mine(input.begin() + static_cast<ptrdiff_t>(chunk * static_cast<size_t>(rank)),
                              input.begin() + static_cast<ptrdiff_t>(chunk * static_cast<size_t>(rank + 1)));
    std::sort(mine.begin(), mine.end());
    for (size_t i = 0; i < chunk; ++i) cur[static_cast<size_t>(rank)][i] = mine[i];
    lots::barrier();

    // Merge tree: half the remaining data migrates at every stage.
    size_t len = chunk;
    for (int step = 1; step < p; step *= 2) {
      std::vector<lots::Pointer<int32_t>> next;
      for (int r = 0; r < p; r += 2 * step) {
        next.emplace_back();
        next.back().alloc(2 * len);
      }
      if (rank % (2 * step) == 0) {
        auto& left = cur[static_cast<size_t>(rank)];
        auto& right = cur[static_cast<size_t>(rank + step)];
        auto& out = next[static_cast<size_t>(rank / (2 * step))];
        size_t i = 0, j = 0, k = 0;
        while (i < len && j < len) out[k++] = (left[i] <= right[j]) ? left[i++] : right[j++];
        while (i < len) out[k++] = left[i++];
        while (j < len) out[k++] = right[j++];
        std::printf("node %d merged 2 x %zu keys (stage step %d)\n", rank, len, step);
      }
      lots::barrier();
      std::vector<lots::Pointer<int32_t>> compact(static_cast<size_t>(p));
      for (int r = 0; r < p; r += 2 * step) {
        compact[static_cast<size_t>(r)] = next[static_cast<size_t>(r / (2 * step))];
      }
      cur = std::move(compact);
      len *= 2;
    }

    if (rank == 0) {
      std::vector<int32_t> out(kN);
      for (size_t i = 0; i < kN; ++i) out[i] = cur[0][i];
      const bool ok = lots::work::is_sorted_permutation(input, out);
      std::printf("sorted %zu keys across %d nodes: %s\n", kN, p, ok ? "VERIFIED" : "WRONG");
      auto& n = lots::Runtime::self();
      std::printf("home migrations: %lu (the merge tree migrates chunk homes)\n",
                  lots::Runtime::self().stats().home_migrations.load() +
                      0 * n.stats().msgs_sent.load());
    }
    lots::barrier();
  });
  return 0;
}
